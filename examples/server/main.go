// The introduction's basic server: "a high-priority event loop handling
// queries from a user and a low-priority background thread for optimizing
// the server's database. [...] If effects were allowed, then the threads
// could communicate by using a piece of shared state."
//
// The background optimizer periodically publishes a fresher index through
// an atomic pointer; the event loop answers queries against whatever
// index version is current — no synchronization with the low-priority
// thread, hence no priority inversion.
//
// Run with: go run ./examples/server
package main

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/icilk"
	"repro/internal/simio"
)

const (
	prioOptimizer icilk.Priority = 0
	prioEventLoop icilk.Priority = 1
)

// index is the server's "database index"; version counts rebuilds.
type index struct {
	version int
	entries map[int]string
}

func buildIndex(version, size int) *index {
	idx := &index{version: version, entries: make(map[int]string, size)}
	for i := 0; i < size; i++ {
		idx.entries[i] = fmt.Sprintf("record-%d-v%d", i, version)
	}
	return idx
}

func main() {
	rt := icilk.New(icilk.Config{Workers: 2, Levels: 2, Prioritize: true})
	defer rt.Shutdown()

	var current atomic.Pointer[index]
	current.Store(buildIndex(0, 1000))

	// Background optimizer: rebuild the index forever at low priority.
	stop := make(chan struct{})
	icilk.Go(rt, nil, prioOptimizer, "optimizer", func(c *icilk.Ctx) int {
		for v := 1; ; v++ {
			select {
			case <-stop:
				return v
			default:
			}
			next := buildIndex(v, 1000)
			current.Store(next) // publish through shared state
			c.Yield()
		}
	})

	// Event loop: queries arrive via a Poisson process and are answered
	// at high priority against the current index.
	queries := simio.NewPoisson(2*time.Millisecond, 42)
	qStop := make(chan struct{})
	time.AfterFunc(200*time.Millisecond, func() { close(qStop) })
	var worst atomic.Int64
	served := queries.Run(qStop, func(i int) {
		arrival := time.Now()
		icilk.Go(rt, nil, prioEventLoop, "query", func(c *icilk.Ctx) string {
			idx := current.Load()
			ans := idx.entries[i%len(idx.entries)]
			lat := time.Since(arrival)
			for {
				old := worst.Load()
				if int64(lat) <= old || worst.CompareAndSwap(old, int64(lat)) {
					break
				}
			}
			return ans
		})
	})
	close(stop)
	if err := rt.WaitIdle(5 * time.Second); err != nil {
		panic(err)
	}
	fmt.Printf("served %d queries; worst event-loop latency %v; final index v%d\n",
		served, time.Duration(worst.Load()).Round(time.Microsecond),
		current.Load().version)
}
