// Package repro_test holds the top-level benchmark harness: one benchmark
// per table and figure of the paper's evaluation (Table 1, Figure 13,
// Figure 14), the ablations DESIGN.md calls out, and microbenchmarks of
// the substrate. Run with:
//
//	go test -bench=. -benchmem
//
// The Fig13/Fig14 benchmarks execute a complete (shortened) client/server
// experiment per iteration, so they are wall-clock heavy by design.
package repro_test

import (
	"testing"
	"time"

	"repro/internal/dag"
	"repro/internal/experiments"
	"repro/internal/icilk"
	"repro/internal/machine"
	"repro/internal/parser"
	"repro/internal/prio"
	"repro/internal/schedsim"
	"repro/internal/types"
)

// benchCfg keeps experiment benchmarks short per iteration.
func benchCfg() experiments.EvalConfig {
	return experiments.EvalConfig{
		Workers:     4,
		Duration:    80 * time.Millisecond,
		Connections: []int{40},
		Seed:        1,
	}
}

// --- Table 1 ---

func BenchmarkTable1TypecheckWithPriorities(b *testing.B) {
	benchTypecheck(b, true)
}

func BenchmarkTable1TypecheckNoPriorities(b *testing.B) {
	benchTypecheck(b, false)
}

func benchTypecheck(b *testing.B, withPrio bool) {
	variant := "prio"
	if !withPrio {
		variant = "noprio"
	}
	for i := 0; i < b.N; i++ {
		for _, app := range []string{"proxy", "email", "jserver"} {
			if _, err := experiments.CheckProgram(app, variant, withPrio); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Figure 13 ---

func BenchmarkFig13Proxy(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig13(experiments.EvalConfig{
			Workers: cfg.Workers, Duration: cfg.Duration,
			Connections: cfg.Connections, Seed: int64(i + 1),
		})
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
		b.ReportMetric(rows[0].RatioAvg, "proxy-ratio")
	}
}

func BenchmarkFig13Email(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig13(experiments.EvalConfig{
			Workers: cfg.Workers, Duration: cfg.Duration,
			Connections: cfg.Connections, Seed: int64(i + 1),
		})
		if len(rows) < 2 {
			b.Fatal("no rows")
		}
		b.ReportMetric(rows[1].RatioAvg, "email-ratio")
	}
}

// --- Figure 14 ---

func BenchmarkFig14ProxyEmail(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig14ProxyEmail(cfg)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig14JServer(b *testing.B) {
	cfg := benchCfg()
	cfg.Duration = 120 * time.Millisecond
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig14JServer(cfg)
		if len(rows) != 4 {
			b.Fatal("wrong row count")
		}
	}
}

// --- Ablations ---

func BenchmarkAblationQuantum(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		experiments.AblationQuantum(cfg)
	}
}

func BenchmarkAblationGamma(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		experiments.AblationGamma(cfg)
	}
}

func BenchmarkAblationThreshold(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		experiments.AblationThreshold(cfg)
	}
}

// --- Theorem 2.3 bound verification on the DAG simulator ---

func buildBoundGraph() *dag.Graph {
	order := prio.NewTotalOrder("low", "high")
	g := dag.New(order)
	if err := g.AddThread("hi", prio.Const("high")); err != nil {
		panic(err)
	}
	if err := g.AddThread("lo", prio.Const("low")); err != nil {
		panic(err)
	}
	var prev dag.VertexID
	for i := 0; i < 200; i++ {
		v := g.MustAddVertex("hi", "")
		if i > 0 {
			_ = prev
		}
		prev = v
		g.MustAddVertex("lo", "")
	}
	return g
}

func BenchmarkTheorem23Verify(b *testing.B) {
	g := buildBoundGraph()
	for i := 0; i < b.N; i++ {
		sched, err := schedsim.Run(g, schedsim.Options{P: 4, Prompt: true})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := schedsim.VerifyBound(g, sched, "hi", 4)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Holds {
			b.Fatal("bound violated")
		}
	}
}

func BenchmarkPromptSchedule(b *testing.B) {
	g := buildBoundGraph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := schedsim.Run(g, schedsim.Options{P: 8, Prompt: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Substrate microbenchmarks ---

const benchProgram = `
priority p
main : nat @ p = {
  dcl acc : nat := 0 in
  let loop = fix f : nat -> nat cmd[p] is
    fn n : nat => ifz n { cmd[p]{ r <- cmd[p]{ !acc }; ret r }
                        ; m . cmd[p]{ w <- cmd[p]{ acc := m }; r <- f m; ret r } } in
  x <- loop 40;
  ret x
}
`

func BenchmarkMachineRun(b *testing.B) {
	prog, err := parser.Parse(benchProgram)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mc := machine.New(prog.Order, prog.MainPrio, prog.Main)
		if err := mc.Run(machine.RunAll{}, 1_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParserParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := parser.Parse(benchProgram); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTypecheck(b *testing.B) {
	prog, err := parser.Parse(benchProgram)
	if err != nil {
		b.Fatal(err)
	}
	c := types.New(prog.Order)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Cmd(types.NewEnv(prog.Order), types.Signature{}, prog.Main, prog.MainPrio); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRuntimeSpawnTouch(b *testing.B) {
	rt := icilk.New(icilk.Config{Workers: 4, Levels: 2, Prioritize: true, DisableMetrics: true})
	defer rt.Shutdown()
	b.ReportAllocs()
	b.ResetTimer()
	fut := icilk.Go(rt, nil, 1, "bench", func(c *icilk.Ctx) int {
		for i := 0; i < b.N; i++ {
			child := icilk.Go(rt, c, 1, "child", func(*icilk.Ctx) int { return i })
			child.Touch(c)
		}
		return 0
	})
	if _, err := icilk.Await(fut, 10*time.Minute); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkRuntimeIOFuture(b *testing.B) {
	rt := icilk.New(icilk.Config{Workers: 2, Levels: 1, DisableMetrics: true})
	defer rt.Shutdown()
	b.ResetTimer()
	fut := icilk.Go(rt, nil, 0, "bench", func(c *icilk.Ctx) int {
		for i := 0; i < b.N; i++ {
			io := icilk.IO(rt, 0, 0, func() int { return i })
			io.Touch(c)
		}
		return 0
	})
	if _, err := icilk.Await(fut, 10*time.Minute); err != nil {
		b.Fatal(err)
	}
}
